#!/usr/bin/env bash
# Builds the Release preset and runs the join-heavy benchmarks, emitting one
# BENCH_<name>.json per binary (Google Benchmark JSON) for the perf
# trajectory.
#
# Usage: run_benches.sh [--filter REGEX]
#   --filter REGEX   passed through as --benchmark_filter to every bench
#                    binary, so one bench family can be re-recorded without
#                    running the full suite. CAUTION when writing into
#                    bench/results: a filtered run overwrites each target's
#                    whole JSON with only the filtered subset, so combine it
#                    with BENCH_TARGETS to touch only the intended file(s),
#                    and only use filters that keep every baselined
#                    benchmark of those files (check_bench_counters.py fails
#                    on benchmarks missing from a fresh run either way).
#
# Tunables:
#   BENCH_MIN_TIME   --benchmark_min_time value   (default 0.01s; raise for
#                    stable numbers, keep low for smoke runs)
#   BENCH_OUT_DIR    where the JSON files land     (default build/release;
#                    use bench/results to refresh the committed baselines)
#   BENCH_TARGETS    space-separated bench binaries (default: the join-heavy
#                    ones the storage engine is measured by, bench_exec —
#                    the parallel-runtime speedup curve — and bench_serve,
#                    the query-service latency/shed curve)
#   BENCH_CMAKE_ARGS extra configure args (e.g. -DGYO_BUILD_TESTS=OFF
#                    -DGYO_BUILD_EXAMPLES=OFF for a bench-only build; note
#                    they persist in build/release's CMake cache)
set -euo pipefail
cd "$(dirname "$0")/.."

filter=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --filter)
      [[ $# -ge 2 ]] || { echo "error: --filter wants a regex" >&2; exit 2; }
      filter="$2"
      shift 2
      ;;
    *)
      echo "error: unknown argument '$1' (usage: run_benches.sh [--filter REGEX])" >&2
      exit 2
      ;;
  esac
done

min_time="${BENCH_MIN_TIME:-0.01s}"
out_dir="${BENCH_OUT_DIR:-build/release}"
targets="${BENCH_TARGETS:-bench_join_strategies bench_yannakakis bench_reducer bench_incremental bench_exec bench_serve}"

# GYO_BUILD_BENCHMARKS=ON is forced (after the extra args) so a cached
# bench-off configuration can't silently leave stale binaries running.
# shellcheck disable=SC2086  # word-splitting of the extra args is intended
cmake --preset release -DGYO_FETCH_BENCHMARK=ON ${BENCH_CMAKE_ARGS:-} \
      -DGYO_BUILD_BENCHMARKS=ON
cmake --build --preset release -j"$(nproc)"

mkdir -p "${out_dir}"
for bench in ${targets}; do
  bin="build/release/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} was not built (is Google Benchmark available?)" >&2
    exit 1
  fi
  out="${out_dir}/BENCH_${bench#bench_}.json"
  echo "== ${bench} -> ${out}"
  # Google Benchmark < 1.8 rejects the "0.01s" suffix form; probe flag
  # support with the cheap --benchmark_list_tests mode (so a real benchmark
  # failure below still fails the script loudly, exactly once).
  mt="${min_time}"
  if ! "${bin}" --benchmark_list_tests \
                --benchmark_min_time="${mt}" > /dev/null 2>&1; then
    mt="${min_time%s}"
  fi
  "${bin}" --benchmark_min_time="${mt}" \
           ${filter:+--benchmark_filter="${filter}"} \
           --benchmark_out="${out}" --benchmark_out_format=json
done
echo "wrote $(ls ${out_dir}/BENCH_*.json | wc -l) BENCH_*.json file(s) to ${out_dir}"
