#!/usr/bin/env python3
"""Diffs Google Benchmark correctness counters against committed baselines.

The benchmarks attach correctness counters — result cardinalities and
intermediate-size stats — to every run (e.g. ``result_rows``,
``max_intermediate``, ``reduced_rows_r0``). Unlike timings, these are
machine-independent: they are seeded row counts, identical on every host and
at every thread count (deterministic execution mode). A drift therefore
means an operator or program now computes a different answer, which is a
correctness regression no matter how fast it runs.

Usage:
    check_bench_counters.py [--baseline bench/results] [--fresh build/release]
                            [--check-time PCT]

``--check-time PCT`` additionally gates wall time: a benchmark whose fresh
``real_time`` exceeds its baseline by more than PCT percent fails the check.
It is opt-in (default off) because the committed baselines are recorded on
whatever host last refreshed them — cross-host time comparisons are noise,
so container CI runs counters-only.

For every ``BENCH_*.json`` in the baseline directory, the same-named file
must exist in the fresh directory, every baseline benchmark must appear in
the fresh run, and every checked counter must match exactly. Extra
benchmarks or files in the fresh run are reported but do not fail (new
benchmarks land before their baseline is committed). Exit status: 0 clean,
1 drift/missing data, 2 usage error.
"""

import argparse
import json
import sys
from pathlib import Path

# Counters treated as correctness-bearing. Everything else a benchmark
# reports (times, throughput, morsel tallies that depend on pool width, and
# the memory counters peak_state_bytes / peak_rss_mb, which depend on task
# scheduling and the host) is ignored here. effective_steps (the fixpoint's
# shrinking-semijoin count), fixpoint_rows_* (fixpoint cardinalities), and
# retired_states (dataflow retirement count: every consumed, non-retained
# state is freed exactly once) are deterministic at every thread count, so
# they are pinned alongside the result cardinalities.
# bloom_partition_skips / probe_rows_pruned are per-row functions of the
# data, the hash, and the partition count — fixed per bench name (thread
# count is part of the name), so they pin too; a drift means the Bloom
# build, the hash kernels, or the partition policy changed.
# delta_rounds / rows_rescanned are the incremental-maintenance work
# measures (bench_incremental): fixpoint rounds actually executed and input
# rows scanned by executed semijoins (+ the grow phase's hash/probe scans).
# Both are deterministic functions of the seeded start state, so they pin —
# a drift means the delta-round schedule or the revival grow phase changed
# how much work an append costs.
CHECKED_COUNTERS = ("result_rows", "max_intermediate", "queries",
                    "effective_steps", "retired_states",
                    "bloom_partition_skips", "probe_rows_pruned",
                    "delta_rounds", "rows_rescanned")
CHECKED_PREFIXES = ("reduced_rows", "fixpoint_rows")

# Counters checked for sign, not value, as (bench-name substring, counter,
# meaning-of-a-zero) rules. These are behaviors the benches exist to
# demonstrate but whose exact magnitudes are scheduling- or host-dependent,
# so no exact pin is possible:
#   * tasks_stolen on the deliberately skewed StealImbalance family — a
#     family-wide zero means the hot partition serialized on one deque.
#   * requests_shed on the serve Overload bench — a zero means an
#     over-offered gyo_serve stopped shedding, i.e. backpressure is off and
#     overload degrades into unbounded queueing.
# Each sign check is aggregated over every benchmark the substring matches
# (summed across thread-count args) because any single configuration can
# legitimately come up zero in a fast run, while a family-wide zero means
# the mechanism is off. Baselines recorded on hosts where the behavior never
# triggered leave the constraint vacuous.
#   * plan_cache_hits / state_cache_hits on the bench_incremental repeat
#     families — the benches warm a cache and then look up the identical
#     query/database, so a zero means the hit path is broken (every lookup
#     silently degraded to a rebuild). Sign-pinned rather than value-pinned
#     so the benches stay free to report per-lookup verdicts.
#   * sip_rows_pruned on the SipStar family — the chain head consults the
#     tail satellites' Bloom filters; a family-wide zero means sideways
#     information passing stopped engaging on the shape built for it.
#   * zone_map_skips on the ZoneMap family — its disjoint half guarantees
#     the skip; a zero means Semijoin stopped consulting the zone maps.
POSITIVE_RULES = (
    ("StealImbalance", "tasks_stolen",
     "work stealing no longer triggers on the skewed partition"),
    ("SipStar", "sip_rows_pruned",
     "sideways information passing no longer prunes the star chain"),
    ("ZoneMap", "zone_map_skips",
     "Semijoin no longer skips provably disjoint key ranges"),
    ("Serve_Overload", "requests_shed",
     "the overloaded server no longer sheds (backpressure is off)"),
    ("PlanCacheHit", "plan_cache_hits",
     "the warmed plan cache no longer hits on a repeat query"),
    ("StateCache", "state_cache_hits",
     "the warmed state cache no longer hits on a repeat lookup"),
)


def checked_counter(name: str) -> bool:
    return name in CHECKED_COUNTERS or name.startswith(CHECKED_PREFIXES)


def positive_counter(bench_name: str, counter: str) -> bool:
    return any(substring in bench_name and counter == rule_counter
               for substring, rule_counter, _ in POSITIVE_RULES)


def load_benchmarks(path: Path) -> tuple:
    """Loads one benchmark JSON file.

    Returns (counters, times): benchmark name -> {counter: value} and
    benchmark name -> real_time in seconds (for the opt-in wall-time gate).
    """
    with path.open() as f:
        report = json.load(f)
    counters, times = {}, {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # aggregates repeat the per-iteration counters
        name = bench["name"]
        counters[name] = {
            key: value
            for key, value in bench.items()
            if (checked_counter(key) or positive_counter(name, key))
            and isinstance(value, (int, float))
        }
        if isinstance(bench.get("real_time"), (int, float)):
            unit = bench.get("time_unit", "ns")
            scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}.get(unit)
            if scale is not None:
                times[name] = bench["real_time"] * scale
    return counters, times


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="bench/results", type=Path,
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--fresh", default="build/release", type=Path,
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--check-time", metavar="PCT", type=float,
                        default=None,
                        help="opt-in wall-time gate: fail when a benchmark's "
                             "fresh real_time exceeds its baseline by more "
                             "than PCT percent. Off by default because "
                             "baselines are recorded on a different host "
                             "than CI; only enable where baseline and fresh "
                             "runs share a machine class.")
    args = parser.parse_args()
    if args.check_time is not None and args.check_time < 0:
        print("error: --check-time wants a non-negative percentage",
              file=sys.stderr)
        return 2

    baseline_files = sorted(args.baseline.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"error: no BENCH_*.json baselines under {args.baseline}",
              file=sys.stderr)
        return 2

    failures = []
    checked = 0
    for baseline_path in baseline_files:
        fresh_path = args.fresh / baseline_path.name
        if not fresh_path.exists():
            failures.append(f"{baseline_path.name}: missing from {args.fresh} "
                            "(bench binary not run?)")
            continue
        baseline, baseline_times = load_benchmarks(baseline_path)
        fresh, fresh_times = load_benchmarks(fresh_path)
        positive_sums = {}  # POSITIVE_RULES entry -> [baseline_sum, fresh_sum]
        for bench_name, counters in sorted(baseline.items()):
            if bench_name not in fresh:
                failures.append(f"{baseline_path.name}: benchmark "
                                f"'{bench_name}' missing from fresh run")
                continue
            for counter, want in sorted(counters.items()):
                got = fresh[bench_name].get(counter)
                checked += 1
                if got is None:
                    failures.append(
                        f"{baseline_path.name}: {bench_name}: counter "
                        f"'{counter}' missing from fresh run")
                elif positive_counter(bench_name, counter):
                    # Family-aggregated sign check, resolved after the loop
                    # (see above): a single configuration showing zero is a
                    # timing race, the whole family at zero is a regression.
                    for rule in POSITIVE_RULES:
                        if rule[0] in bench_name and counter == rule[1]:
                            sums = positive_sums.setdefault(rule, [0.0, 0.0])
                            sums[0] += want
                            sums[1] += got
                elif got != want:
                    failures.append(
                        f"{baseline_path.name}: {bench_name}: {counter} "
                        f"drifted: baseline {want:g}, fresh {got:g}")
            if args.check_time is not None:
                base_t = baseline_times.get(bench_name)
                fresh_t = fresh_times.get(bench_name)
                if base_t and fresh_t is not None:
                    checked += 1
                    if fresh_t > base_t * (1.0 + args.check_time / 100.0):
                        failures.append(
                            f"{baseline_path.name}: {bench_name}: real_time "
                            f"regressed beyond {args.check_time:g}%: "
                            f"baseline {base_t * 1e3:.3f} ms, fresh "
                            f"{fresh_t * 1e3:.3f} ms")
        for (substring, counter, meaning), (want_sum, got_sum) in sorted(
                positive_sums.items()):
            if want_sum > 0 and got_sum <= 0:
                failures.append(
                    f"{baseline_path.name}: {counter} summed over the "
                    f"'{substring}' family dropped to zero (baseline sum "
                    f"{want_sum:g}): {meaning}")
        for bench_name in sorted(set(fresh) - set(baseline)):
            print(f"note: {baseline_path.name}: new benchmark "
                  f"'{bench_name}' has no baseline yet")

    if failures:
        print(f"bench-check: {len(failures)} counter problem(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("If the change is intentional, refresh the baselines with\n"
              "  BENCH_OUT_DIR=bench/results ./scripts/run_benches.sh",
              file=sys.stderr)
        return 1
    print(f"bench-check: {checked} counters match across "
          f"{len(baseline_files)} baseline file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
