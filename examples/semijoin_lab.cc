// semijoin_lab: the §4 story about non-UR databases and semijoins.
//
// UR databases are always globally consistent — semijoins cannot prune them.
// General databases dangle; for TREE schemas a full reducer (2(n−1)
// semijoins) repairs any state, while for CYCLIC schemas no semijoin program
// can: the classic "inequality triangle" is pairwise consistent, a semijoin
// fixpoint, and yet its full join is empty.

#include <cstdio>

#include "gyo/acyclic.h"
#include "rel/ops.h"
#include "rel/reducer.h"
#include "rel/universal.h"
#include "schema/catalog.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "util/rng.h"

int main() {
  gyo::Catalog catalog;

  std::printf("== 1. UR databases are globally consistent ==\n");
  gyo::DatabaseSchema path = gyo::ParseSchema(catalog, "ab,bc,cd");
  gyo::Rng rng(7);
  gyo::Relation universal =
      gyo::RandomUniversal(path.Universe(), 24, 8, rng);
  std::vector<gyo::Relation> ur = gyo::ProjectDatabase(universal, path);
  std::printf("D = %s, states projected from a random I (|I| = %lld)\n",
              path.Format(catalog).c_str(),
              static_cast<long long>(universal.NumRows()));
  std::printf("globally consistent: %s (semijoins have nothing to prune)\n\n",
              gyo::IsGloballyConsistent(path, ur) ? "yes" : "no");

  std::printf("== 2. A dangling non-UR state on a tree schema ==\n");
  std::vector<gyo::Relation> dangling;
  for (const gyo::RelationSchema& r : path.Relations()) {
    gyo::Relation rel(r);
    rel.Reserve(12);
    for (int k = 0; k < 12; ++k) {
      rel.AddRow({static_cast<gyo::Value>(rng.Below(4)),
                  static_cast<gyo::Value>(rng.Below(4))});
    }
    rel.Canonicalize();
    dangling.push_back(rel);
  }
  std::printf("random independent states: consistent? %s\n",
              gyo::IsGloballyConsistent(path, dangling) ? "yes" : "no");
  auto reduced = gyo::ApplyFullReducer(path, dangling);
  std::printf("after the full reducer (%d semijoins): consistent? %s\n",
              2 * (path.NumRelations() - 1),
              gyo::IsGloballyConsistent(path, *reduced) ? "yes" : "no");
  for (int i = 0; i < path.NumRelations(); ++i) {
    std::printf("  %s: %lld -> %lld tuples\n",
                catalog.Format(path[i]).c_str(),
                static_cast<long long>(
                    dangling[static_cast<size_t>(i)].NumRows()),
                static_cast<long long>(
                    (*reduced)[static_cast<size_t>(i)].NumRows()));
  }

  std::printf("\n== 3. Cyclic schemas defeat semijoins ==\n");
  gyo::DatabaseSchema triangle = gyo::Aring(3);
  std::vector<gyo::Relation> tri;
  for (const gyo::RelationSchema& r : triangle.Relations()) {
    gyo::Relation rel(r);
    rel.AddRow({0, 1});
    rel.AddRow({1, 0});
    rel.Canonicalize();
    tri.push_back(rel);
  }
  std::printf("D = %s (cyclic), each state = {(0,1), (1,0)}\n",
              triangle.Format(catalog).c_str());
  int steps = -1;
  std::vector<gyo::Relation> fix = gyo::SemijoinFixpoint(triangle, tri, &steps);
  std::printf("semijoin fixpoint reached after %d effective semijoins\n",
              steps);
  std::printf("globally consistent: %s; full join has %lld tuples\n",
              gyo::IsGloballyConsistent(triangle, fix) ? "yes" : "no",
              static_cast<long long>(gyo::JoinAll(tri).NumRows()));
  std::printf("=> every tuple dangles, yet no semijoin can remove any: no\n"
              "   full reducer exists for cyclic schemas (Bernstein-Goodman).\n");
  return 0;
}
