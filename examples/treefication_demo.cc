// treefication_demo: transforming cyclic schemas into trees (§4, Thm 4.2).
//
// Walks through:
//   1. Corollary 3.2 — the single least relation that treefies a schema;
//   2. Fixed Treefication — can K relations of size ≤ B treefy D?
//      (exact solver vs the FFD heuristic);
//   3. the Theorem 4.2 reduction: a Bin Packing instance turned into a
//      schema of disjoint Acliques whose treefiability answers the packing
//      question.

#include <cstdio>

#include "gyo/acyclic.h"
#include "query/treefication.h"
#include "schema/catalog.h"
#include "schema/generators.h"

namespace {

gyo::Catalog MakeAlphabet() {
  gyo::Catalog c;
  for (char ch = 'a'; ch <= 'z'; ++ch) {
    c.Intern(std::string(1, ch));
  }
  return c;
}

}  // namespace

int main() {
  gyo::Catalog catalog = MakeAlphabet();

  std::printf("== 1. Corollary 3.2 on the 6-ring ==\n");
  gyo::DatabaseSchema ring = gyo::Aring(6);
  std::printf("D = %s (cyclic)\n", ring.Format(catalog).c_str());
  gyo::AttrSet least = gyo::TreefyingRelation(ring);
  std::printf("least single treefying relation: %s (the whole universe)\n\n",
              catalog.Format(least).c_str());

  std::printf("== 2. Fixed treefication of the 6-ring ==\n");
  for (auto [k, b] : {std::pair{1, 4}, std::pair{2, 4}, std::pair{2, 3}}) {
    gyo::TreeficationResult r = gyo::FixedTreefication(ring, k, b);
    std::printf("K=%d relations of size <= %d: %s", k, b,
                r.feasible ? "feasible, add" : "infeasible");
    for (const gyo::AttrSet& s : r.added) {
      std::printf(" %s", catalog.Format(s).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");

  std::printf("== 3. Theorem 4.2: Bin Packing as treefication ==\n");
  gyo::BinPackingInstance inst{{3, 3, 4}, 7, 2};
  std::printf("items of sizes {3, 3, 4}, capacity 7, bins 2\n");
  gyo::DatabaseSchema cliques = gyo::BinPackingToSchema(inst);
  std::printf("reduction: %d Aclique relations over %d attributes\n",
              cliques.NumRelations(), cliques.Universe().Size());
  bool packs = gyo::SolveBinPackingExact(inst);
  gyo::TreeficationResult exact =
      gyo::FixedTreefication(cliques, inst.bins, inst.capacity);
  gyo::TreeficationResult ffd =
      gyo::FixedTreeficationFFD(cliques, inst.bins, inst.capacity);
  std::printf("bin packing oracle: %s\n", packs ? "packable" : "not packable");
  std::printf("exact treefication: %s\n",
              exact.feasible ? "feasible" : "infeasible");
  std::printf("FFD heuristic:      %s\n",
              ffd.feasible ? "feasible" : "infeasible (inconclusive)");

  // And an infeasible sibling: with capacity 4 every item needs its own bin.
  gyo::BinPackingInstance tight{{3, 3, 4}, 4, 2};
  gyo::DatabaseSchema cliques2 = gyo::BinPackingToSchema(tight);
  std::printf("\nwith capacity 4 instead: oracle=%s treefication=%s\n",
              SolveBinPackingExact(tight) ? "packable" : "not packable",
              gyo::FixedTreefication(cliques2, tight.bins, tight.capacity)
                      .feasible
                  ? "feasible"
                  : "infeasible");
  return 0;
}
