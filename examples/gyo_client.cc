// gyo_client: command-line client for a gyo_serve daemon. Generates a
// random UR database for a schema locally, ships it with a query over the
// framed protocol, and prints the answer — or asks the server for STATUS.
//
//   gyo_client --port 7411 "ab,bc,cd" "ad" --rows 2000 --domain 50
//   gyo_client --port 7411 --status
//
// Typed server errors (admission sheds, malformed input, draining) print as
// "server error: CODE: message" and exit 3, transport failures exit 1 —
// scripts can tell overload from breakage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "rel/universal.h"
#include "schema/catalog.h"
#include "schema/parse.h"
#include "serve/client.h"
#include "util/rng.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] --port N --status\n"
      "       %s [--host H] --port N SCHEMA TARGET [options]\n"
      "Query a gyo_serve daemon over a random UR database.\n"
      "  --rows N        universal relation rows (default 1000)\n"
      "  --domain N      attribute domain size (default 30)\n"
      "  --seed N        RNG seed (default 1)\n"
      "  --strategy S    auto | full_join | cc_pruned | yannakakis\n"
      "  --deadline-ms N admission deadline (0 = server default)\n"
      "  --plan          print plan diagnostics\n",
      argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  bool status_only = false;
  bool want_plan = false;
  int rows = 1000, domain = 30;
  long seed = 1, deadline_ms = 0;
  gyo::serve::Strategy strategy = gyo::serve::Strategy::kAuto;
  std::string schema_spec, target_spec;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--status") == 0) {
      status_only = true;
    } else if (std::strcmp(argv[i], "--plan") == 0) {
      want_plan = true;
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--domain") == 0 && i + 1 < argc) {
      domain = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--strategy") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (std::strcmp(name, "auto") == 0) {
        strategy = gyo::serve::Strategy::kAuto;
      } else if (std::strcmp(name, "full_join") == 0) {
        strategy = gyo::serve::Strategy::kFullJoin;
      } else if (std::strcmp(name, "cc_pruned") == 0) {
        strategy = gyo::serve::Strategy::kCcPruned;
      } else if (std::strcmp(name, "yannakakis") == 0) {
        strategy = gyo::serve::Strategy::kYannakakis;
      } else {
        return Usage(argv[0]);
      }
    } else if (argv[i][0] != '-' && schema_spec.empty()) {
      schema_spec = argv[i];
    } else if (argv[i][0] != '-' && target_spec.empty()) {
      target_spec = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (port <= 0 || (!status_only && (schema_spec.empty() ||
                                     target_spec.empty()))) {
    return Usage(argv[0]);
  }

  gyo::serve::Client client;
  if (!client.Connect(host, port)) {
    std::fprintf(stderr, "error: %s\n", client.io_error().c_str());
    return 1;
  }

  if (status_only) {
    gyo::serve::StatusResponse status;
    if (client.Status(&status) != gyo::serve::Client::Outcome::kOk) {
      std::fprintf(stderr, "error: %s\n", client.io_error().c_str());
      return 1;
    }
    std::printf(
        "pool: %d threads, %d max concurrent, %d running, %d waiting\n",
        status.pool.threads, status.pool.max_concurrent_queries,
        status.pool.running, status.pool.waiting);
    for (const auto& s : status.pool.submitters) {
      std::printf("  submitter %llu: %d running, %d queued\n",
                  static_cast<unsigned long long>(s.id), s.running, s.waiting);
    }
    std::printf(
        "server: %llu connections accepted, %llu active, %llu served, "
        "%llu shed (deadline %llu, backlog %llu), %llu protocol errors%s\n",
        static_cast<unsigned long long>(status.connections_accepted),
        static_cast<unsigned long long>(status.connections_active),
        static_cast<unsigned long long>(status.queries_served),
        static_cast<unsigned long long>(status.queries_shed_deadline +
                                        status.queries_shed_backlog),
        static_cast<unsigned long long>(status.queries_shed_deadline),
        static_cast<unsigned long long>(status.queries_shed_backlog),
        static_cast<unsigned long long>(status.protocol_errors),
        status.draining ? " (draining)" : "");
    std::printf(
        "scheduling: %llu tasks stolen, affinity %llu hits / %llu misses\n",
        static_cast<unsigned long long>(status.tasks_stolen),
        static_cast<unsigned long long>(status.affinity_hits),
        static_cast<unsigned long long>(status.affinity_misses));
    std::printf(
        "pruning: %llu rows SIP-pruned, %llu zone-map skips\n",
        static_cast<unsigned long long>(status.sip_rows_pruned),
        static_cast<unsigned long long>(status.zone_map_skips));
    std::printf(
        "caches: plan %llu hits / %llu misses, result %llu hits / %llu "
        "misses\n",
        static_cast<unsigned long long>(status.plan_cache_hits),
        static_cast<unsigned long long>(status.plan_cache_misses),
        static_cast<unsigned long long>(status.result_cache_hits),
        static_cast<unsigned long long>(status.result_cache_misses));
    return 0;
  }

  // Build the UR database locally: project a random universal relation onto
  // the schema — the substrate every paper experiment runs on.
  gyo::Catalog catalog;
  gyo::DatabaseSchema schema;
  gyo::AttrSet target;
  std::string parse_error;
  if (!gyo::serve::SafeParseSchema(catalog, schema_spec, &schema,
                                   &parse_error) ||
      !gyo::serve::SafeParseAttrSet(catalog, target_spec, &target,
                                    &parse_error)) {
    std::fprintf(stderr, "error: %s\n", parse_error.c_str());
    return 2;
  }
  gyo::Rng rng(static_cast<uint64_t>(seed));
  const gyo::Relation universal =
      gyo::RandomUniversal(schema.Universe(), rows, domain, rng);

  gyo::serve::QueryRequest request;
  request.schema_spec = schema_spec;
  request.target_spec = target_spec;
  request.strategy = strategy;
  request.deadline_ms = static_cast<uint64_t>(deadline_ms);
  request.want_plan = want_plan;
  request.states = gyo::ProjectDatabase(universal, schema);

  gyo::serve::QueryResponse response;
  const gyo::serve::Client::Outcome outcome =
      client.Query(request, &response);
  if (outcome == gyo::serve::Client::Outcome::kServerError) {
    std::fprintf(stderr, "server error: %s: %s\n",
                 gyo::serve::ErrorCodeName(client.server_error().code),
                 client.server_error().message.c_str());
    return 3;
  }
  if (outcome != gyo::serve::Client::Outcome::kOk) {
    std::fprintf(stderr, "error: %s\n", client.io_error().c_str());
    return 1;
  }

  std::printf("result: %lld rows (max intermediate %lld, produced %lld)\n",
              static_cast<long long>(response.stats.result_rows),
              static_cast<long long>(response.stats.max_intermediate_rows),
              static_cast<long long>(response.stats.total_rows_produced));
  std::printf(
      "timing: %.3f ms queued, %.3f ms running, %lld tasks, %lld morsels\n",
      response.query_stats.queue_wait_seconds * 1e3,
      response.query_stats.run_time_seconds * 1e3,
      static_cast<long long>(response.query_stats.tasks),
      static_cast<long long>(response.query_stats.morsels));
  std::printf(
      "pruning: %lld rows SIP-pruned, %lld zone-map skips, %lld Bloom "
      "pruned\n",
      static_cast<long long>(response.query_stats.sip_rows_pruned),
      static_cast<long long>(response.query_stats.zone_map_skips),
      static_cast<long long>(response.query_stats.probe_rows_pruned));
  if (response.has_plan) {
    std::printf(
        "plan: %s, %d statements, critical path %d, %d sources\n",
        gyo::serve::StrategyName(response.plan.strategy),
        response.plan.num_statements, response.plan.critical_path,
        response.plan.num_source_statements);
  }
  return 0;
}
