#ifndef GYO_EXAMPLES_EXEC_FLAGS_H_
#define GYO_EXAMPLES_EXEC_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exec/exec_context.h"
#include "exec/executor_pool.h"

/// \file
/// The execution flags shared by the demo CLIs (gyo_cli, query_planner):
/// --threads N and --max-concurrent-queries M, plus the GYO_EXEC_THREADS
/// fallback and the ConfigureGlobal call that sizes the process-wide
/// ExecutorPool. One implementation so the two binaries cannot drift.

namespace gyo_examples {

enum class FlagParse { kNotAFlag, kParsed, kError };

/// Tries to consume an execution flag at argv[*i], advancing *i past its
/// value. Returns kNotAFlag for positional arguments, kParsed on success,
/// and kError (after printing to stderr) for a bad value.
inline FlagParse ParseExecFlag(int argc, char** argv, int* i,
                               gyo::exec::ExecContext* ctx,
                               gyo::exec::ExecutorPool::Options* pool_options) {
  if (std::strcmp(argv[*i], "--threads") == 0) {
    ctx->threads = *i + 1 < argc ? std::atoi(argv[++*i]) : 0;
    if (ctx->threads < 1) {
      std::fprintf(stderr, "error: --threads wants a positive integer\n");
      return FlagParse::kError;
    }
    pool_options->threads = ctx->threads;
    return FlagParse::kParsed;
  }
  if (std::strcmp(argv[*i], "--max-concurrent-queries") == 0) {
    pool_options->max_concurrent_queries =
        *i + 1 < argc ? std::atoi(argv[++*i]) : 0;
    if (pool_options->max_concurrent_queries < 1) {
      std::fprintf(
          stderr,
          "error: --max-concurrent-queries wants a positive integer\n");
      return FlagParse::kError;
    }
    return FlagParse::kParsed;
  }
  return FlagParse::kNotAFlag;
}

/// Applies the GYO_EXEC_THREADS fallback — without --threads, the
/// environment variable alone enables parallelism (width resolved via
/// ResolveThreads) — and sizes the process-wide pool from the flags before
/// any query touches it (parallel execution admits queries into
/// ExecutorPool::Global()).
inline void ConfigureExecFromFlags(
    gyo::exec::ExecContext* ctx,
    const gyo::exec::ExecutorPool::Options& pool_options) {
  if (pool_options.threads == 0 &&
      std::getenv("GYO_EXEC_THREADS") != nullptr) {
    ctx->threads = gyo::exec::ExecutorPool::ResolveThreads(0);
  }
  gyo::exec::ExecutorPool::ConfigureGlobal(pool_options);
}

/// Prints the process-wide pool's shape and admission queue state from the
/// same atomic snapshot the gyo_serve STATUS frame carries
/// (ExecutorPool::PoolStatus) — every status surface reads one struct, so
/// the CLI line and the wire protocol cannot disagree about what the pool
/// looks like. Per-submitter running/queued tallies follow on their own
/// lines (the queue-depth observable behind backpressure). When the context
/// carries QueryStats from a completed query, also prints that query's
/// scheduling counters — steals, partition-affinity hits/misses, and the
/// admission queue depth it saw on arrival. Only meaningful on the parallel
/// path — callers skip it when ctx.threads == 1 (serial execution never
/// touches the pool).
inline void PrintPoolStatus(const gyo::exec::ExecContext& ctx) {
  gyo::exec::ExecutorPool& pool =
      ctx.pool != nullptr ? *ctx.pool : gyo::exec::ExecutorPool::Global();
  const gyo::exec::ExecutorPool::PoolStatus status = pool.Status();
  std::printf(
      "pool status: %d threads, %d max concurrent queries, %d running, "
      "%d waiting\n",
      status.threads, status.max_concurrent_queries, status.running,
      status.waiting);
  for (const auto& s : status.submitters) {
    std::printf("  submitter %llu: %d running, %d queued\n",
                static_cast<unsigned long long>(s.id), s.running, s.waiting);
  }
  if (ctx.query_stats != nullptr) {
    const gyo::exec::QueryStats& qs = *ctx.query_stats;
    std::printf(
        "  scheduling: %lld tasks stolen, affinity %lld hits / %lld misses, "
        "queue depth at admit %lld\n",
        static_cast<long long>(qs.tasks_stolen),
        static_cast<long long>(qs.affinity_hits),
        static_cast<long long>(qs.affinity_misses),
        static_cast<long long>(qs.queue_depth_at_admit));
    std::printf(
        "  pruning: %lld rows SIP-pruned, %lld zone-map skips, %lld Bloom "
        "pruned\n",
        static_cast<long long>(qs.sip_rows_pruned),
        static_cast<long long>(qs.zone_map_skips),
        static_cast<long long>(qs.probe_rows_pruned));
  }
}

}  // namespace gyo_examples

#endif  // GYO_EXAMPLES_EXEC_FLAGS_H_
