// gyo_cli: a command-line front end to the library's decision procedures.
//
//   gyo_cli classify "ab,bc,cd"            tree/cyclic + qual tree
//   gyo_cli reduce   "abc,ab,bc" [sacred]  the GYO reduction GR(D, X)
//   gyo_cli cc       "abg,bcg,acf,ad,de,ea" abc    canonical connection
//   gyo_cli lossless "abc,ab,bc" "ab,bc"   decide ⋈D ⊨ ⋈D'
//   gyo_cli gamma    "abc,ab,bc"           γ-acyclicity + witness
//   gyo_cli treefy   "ab,bc,cd,da" K B     fixed treefication
//   gyo_cli dot      "ab,bc,cd"            qual tree in Graphviz dot
//   gyo_cli solve    "ab,bc,cd" ad         execute the solver programs on a
//                                          random UR database
//
// A global "--threads N" flag routes execution (the solve command) through
// the parallel exec runtime; "--max-concurrent-queries M" additionally caps
// how many queries the process-wide ExecutorPool admits at once (both flags
// configure the shared pool before its lazy creation; the GYO_EXEC_THREADS
// environment variable sizes the pool when --threads is absent). Every
// other command is schema-level analysis and ignores them.
//
// Schemas use the paper's notation: relations separated by commas; either
// one-letter attributes ("ab,bc") or space-separated names inside a
// relation ("part supplier, supplier city").

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/executor_pool.h"
#include "exec/physical_plan.h"
#include "exec_flags.h"
#include "gyo/acyclic.h"
#include "gyo/gamma.h"
#include "gyo/gyo.h"
#include "gyo/qual_graph.h"
#include "query/lossless.h"
#include "query/treefication.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/catalog.h"
#include "schema/parse.h"
#include "tableau/canonical.h"
#include "util/rng.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: gyo_cli [--threads N] [--max-concurrent-queries M] "
               "<classify|reduce|cc|lossless|gamma|treefy|dot|solve>"
               " <schema> [args...]\n");
  return 2;
}

int Classify(gyo::Catalog& catalog, const gyo::DatabaseSchema& d) {
  if (gyo::IsTreeSchema(d)) {
    auto tree = gyo::BuildJoinTree(d);
    std::printf("tree schema; qual tree: %s\n",
                tree->Format(d, catalog).c_str());
  } else {
    std::printf("cyclic schema; least treefying relation: %s\n",
                catalog.Format(gyo::TreefyingRelation(d)).c_str());
  }
  return 0;
}

int Reduce(gyo::Catalog& catalog, const gyo::DatabaseSchema& d,
           const char* sacred_spec) {
  gyo::AttrSet sacred;
  if (sacred_spec != nullptr) {
    sacred = gyo::ParseAttrSet(catalog, sacred_spec);
  }
  gyo::GyoResult r = gyo::GyoReduceFast(d, sacred);
  std::printf("GR(D%s%s) = %s\n", sacred_spec != nullptr ? ", " : "",
              sacred_spec != nullptr ? catalog.Format(sacred).c_str() : "",
              r.reduced.Format(catalog).c_str());
  std::printf("%zu operations; survivors of original relations:",
              r.trace.size());
  for (int s : r.survivors) std::printf(" R%d", s);
  std::printf("\n");
  return 0;
}

int CanonicalCmd(gyo::Catalog& catalog, const gyo::DatabaseSchema& d,
                 const char* target) {
  gyo::AttrSet x = gyo::ParseAttrSet(catalog, target);
  gyo::CanonicalResult cc = gyo::CanonicalConnection(d, x);
  std::printf("CC(D, %s) = %s  [%s]\n", catalog.Format(x).c_str(),
              cc.schema.Format(catalog).c_str(),
              cc.used_fast_path ? "GYO fast path" : "tableau minimization");
  for (int i = 0; i < cc.schema.NumRelations(); ++i) {
    std::printf("  %s  from R%d\n", catalog.Format(cc.schema[i]).c_str(),
                cc.sources[static_cast<size_t>(i)]);
  }
  return 0;
}

int Lossless(gyo::Catalog& catalog, const gyo::DatabaseSchema& d,
             const char* dprime_spec) {
  gyo::DatabaseSchema dprime = gyo::ParseSchema(catalog, dprime_spec);
  if (!dprime.CoveredBy(d)) {
    std::fprintf(stderr, "error: D' must satisfy D' <= D\n");
    return 1;
  }
  bool implied = gyo::JoinDependencyImplies(d, dprime);
  std::printf("join D |= join D': %s\n", implied ? "yes" : "NO (lossy)");
  return implied ? 0 : 1;
}

int Gamma(gyo::Catalog& catalog, const gyo::DatabaseSchema& d) {
  bool acyclic = gyo::IsGammaAcyclic(d);
  std::printf("gamma-acyclic: %s\n", acyclic ? "yes" : "no");
  if (!acyclic) {
    if (auto cycle = gyo::FindWeakGammaCycle(d)) {
      std::printf("gamma-cycle:");
      gyo::DatabaseSchema dd = gyo::Deduplicate(d);
      for (size_t i = 0; i < cycle->relations.size(); ++i) {
        std::printf(" %s -[%s]-",
                    catalog.Format(dd[cycle->relations[i]]).c_str(),
                    catalog.Name(cycle->attributes[i]).c_str());
      }
      std::printf(" (back to start)\n");
    }
  }
  return 0;
}

int Treefy(gyo::Catalog& catalog, const gyo::DatabaseSchema& d, int k, int b) {
  gyo::TreeficationResult r = gyo::FixedTreefication(d, k, b);
  if (r.feasible) {
    std::printf("feasible; add:");
    for (const gyo::AttrSet& s : r.added) {
      std::printf(" %s", catalog.Format(s).c_str());
    }
    std::printf("\n");
    return 0;
  }
  std::printf("infeasible%s\n",
              r.exhausted ? " (search budget exhausted: inconclusive)" : "");
  return 1;
}

// Builds the §4/§6 solver programs for (d, x), executes them on a random UR
// database through the exec runtime (ctx.threads workers), and cross-checks
// every answer against the reference evaluator.
int Solve(gyo::Catalog& catalog, const gyo::DatabaseSchema& d,
          const char* target, const gyo::exec::ExecContext& ctx) {
  gyo::AttrSet x = gyo::ParseAttrSet(catalog, target);
  gyo::Rng rng(2026);
  gyo::Relation universal = gyo::RandomUniversal(d.Universe(), 128, 8, rng);
  std::vector<gyo::Relation> states = gyo::ProjectDatabase(universal, d);
  gyo::Relation reference = gyo::EvaluateJoinQuery(d, x, states);
  std::printf("solving (D, %s) on a random UR database, %d thread%s\n",
              catalog.Format(x).c_str(), ctx.threads,
              ctx.threads == 1 ? "" : "s");

  struct Entry {
    const char* name;
    gyo::Program program;
  };
  std::vector<Entry> entries;
  entries.push_back({"full join", gyo::FullJoinProgram(d, x)});
  entries.push_back({"CC-pruned", gyo::CCPrunedProgram(d, x)});
  if (auto yann = gyo::YannakakisProgram(d, x)) {
    entries.push_back({"Yannakakis", *yann});
  } else {
    std::printf("  Yannakakis: n/a (cyclic schema)\n");
  }

  bool all_match = true;
  for (const Entry& e : entries) {
    gyo::exec::PhysicalPlan plan = gyo::exec::PhysicalPlan::Compile(e.program);
    gyo::Program::Stats stats;
    gyo::exec::QueryStats query_stats;
    gyo::exec::ExecContext query_ctx = ctx;
    query_ctx.query_stats = &query_stats;
    std::vector<gyo::Relation> out = plan.Execute(states, query_ctx, &stats);
    bool match = out.back().EqualsAsSet(reference);
    all_match = all_match && match;
    std::printf(
        "  %-10s %3d stmts, critical path %2d, max intermediate %5lld, "
        "%lld tuples  %s\n",
        e.name, e.program.NumStatements(), plan.CriticalPathLength(),
        static_cast<long long>(stats.max_intermediate_rows),
        static_cast<long long>(stats.result_rows),
        match ? "[match]" : "[MISMATCH]");
    if (ctx.threads != 1) {
      std::printf(
          "             pool: %.2f ms queued, %.2f ms running, %lld tasks, "
          "%lld morsels, peak state %lld KiB, %lld states retired\n",
          query_stats.queue_wait_seconds * 1e3,
          query_stats.run_time_seconds * 1e3,
          static_cast<long long>(query_stats.tasks),
          static_cast<long long>(query_stats.morsels),
          static_cast<long long>(query_stats.peak_state_bytes / 1024),
          static_cast<long long>(query_stats.retired_states));
      std::printf(
          "             sched: %lld stolen, affinity %lld hits / %lld "
          "misses, queue depth %lld at admit\n",
          static_cast<long long>(query_stats.tasks_stolen),
          static_cast<long long>(query_stats.affinity_hits),
          static_cast<long long>(query_stats.affinity_misses),
          static_cast<long long>(query_stats.queue_depth_at_admit));
      std::printf(
          "             pruning: %lld SIP, %lld zone-map skips, %lld Bloom\n",
          static_cast<long long>(query_stats.sip_rows_pruned),
          static_cast<long long>(query_stats.zone_map_skips),
          static_cast<long long>(query_stats.probe_rows_pruned));
    }
  }
  if (ctx.threads != 1) gyo_examples::PrintPoolStatus(ctx);
  return all_match ? 0 : 1;
}

int Dot(gyo::Catalog& catalog, const gyo::DatabaseSchema& d) {
  auto tree = gyo::BuildJoinTree(d);
  if (!tree.has_value()) {
    std::fprintf(stderr, "error: cyclic schema has no qual tree\n");
    return 1;
  }
  std::printf("%s", tree->ToDot(d, catalog).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  gyo::exec::ExecContext ctx;
  gyo::exec::ExecutorPool::Options pool_options;
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    gyo_examples::FlagParse parsed =
        gyo_examples::ParseExecFlag(argc, argv, &i, &ctx, &pool_options);
    if (parsed == gyo_examples::FlagParse::kError) return 2;
    if (parsed == gyo_examples::FlagParse::kParsed) continue;
    args.push_back(argv[i]);
  }
  gyo_examples::ConfigureExecFromFlags(&ctx, pool_options);
  if (args.size() < 2) return Usage();
  gyo::Catalog catalog;
  gyo::DatabaseSchema d = gyo::ParseSchema(catalog, args[1]);
  const std::string cmd = args[0];
  const size_t n = args.size();
  if (cmd == "classify") return Classify(catalog, d);
  if (cmd == "reduce") return Reduce(catalog, d, n > 2 ? args[2] : nullptr);
  if (cmd == "cc" && n > 2) return CanonicalCmd(catalog, d, args[2]);
  if (cmd == "lossless" && n > 2) return Lossless(catalog, d, args[2]);
  if (cmd == "gamma") return Gamma(catalog, d);
  if (cmd == "treefy" && n > 3) {
    return Treefy(catalog, d, std::atoi(args[2]), std::atoi(args[3]));
  }
  if (cmd == "dot") return Dot(catalog, d);
  if (cmd == "solve" && n > 2) return Solve(catalog, d, args[2], ctx);
  return Usage();
}
