// Quickstart: parse a schema, classify it, reduce it, and look at qual trees.
//
//   $ ./quickstart [schema]
//
// With no argument, walks through the schemas of the paper's Fig. 1.

#include <cstdio>
#include <string>

#include "gyo/acyclic.h"
#include "gyo/gyo.h"
#include "gyo/qual_graph.h"
#include "schema/catalog.h"
#include "schema/parse.h"

namespace {

void Inspect(const std::string& spec) {
  gyo::Catalog catalog;
  gyo::DatabaseSchema d = gyo::ParseSchema(catalog, spec);
  std::printf("schema D = %s\n", d.Format(catalog).c_str());

  // 1. Tree or cyclic? (Corollary 3.1: GR(D) = ∅ iff tree.)
  bool tree = gyo::IsTreeSchema(d);
  std::printf("  type: %s schema\n", tree ? "tree" : "cyclic");

  // 2. The GYO reduction itself.
  gyo::GyoResult gr = gyo::GyoReduce(d);
  std::printf("  GR(D) = %s  (%zu operations)\n",
              gr.reduced.Format(catalog).c_str(), gr.trace.size());

  if (tree) {
    // 3. A qual tree witnessing acyclicity.
    auto qt = gyo::BuildJoinTree(d);
    std::printf("  qual tree: %s\n", qt->Format(d, catalog).c_str());
  } else {
    // 3'. The least relation whose addition makes D a tree (Corollary 3.2)
    // and a Lemma 3.1 witness of cyclicity.
    gyo::AttrSet fix = gyo::TreefyingRelation(d);
    std::printf("  least treefying relation (Cor 3.2): %s\n",
                catalog.Format(fix).c_str());
    if (d.Universe().Size() <= 16) {
      auto core = gyo::FindCyclicCore(d);
      if (core.has_value()) {
        std::printf("  Lemma 3.1 witness: delete %s -> %s (%s)\n",
                    catalog.Format(core->deleted).c_str(),
                    core->core.Format(catalog).c_str(),
                    core->is_aring ? "Aring" : "Aclique");
      }
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    Inspect(argv[1]);
    return 0;
  }
  std::printf("== gyolib quickstart: the schemas of Fig. 1 ==\n\n");
  Inspect("ab,bc,cd");        // tree (path)
  Inspect("ab,bc,ac");        // cyclic (triangle)
  Inspect("abc,cde,ace,afe"); // tree with a non-obvious qual tree
  Inspect("ab,bc,cd,da");     // Fig. 2a: the Aring of size 4
  Inspect("bcd,acd,abd,abc"); // Fig. 2b: the Aclique of size 4
  return 0;
}
