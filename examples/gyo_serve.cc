// gyo_serve: the query service daemon. Binds a loopback TCP port, speaks
// the framed protocol of docs/protocol.md, and multiplexes every client
// connection onto one shared ExecutorPool — admission deadlines and
// per-submitter backlog bounds turn overload into typed shed responses
// instead of unbounded queueing. SIGTERM (or SIGINT) drains gracefully:
// stop accepting, finish in-flight queries, flush every response, exit 0.
//
//   gyo_serve --port 7411 --threads 4 --max-concurrent-queries 2
//             --max-queue-wait-ms 250 --max-waiting-per-submitter 8
//
// --port 0 (the default) picks an ephemeral port; the daemon prints
// "listening on HOST:PORT" either way, so scripts can scrape the port.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/executor_pool.h"
#include "serve/server.h"

namespace {

gyo::serve::Server* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-safe by contract: one atomic store + one pipe write.
  if (g_server != nullptr) g_server->RequestDrain();
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--bind ADDR] [--threads N]\n"
      "          [--max-concurrent-queries N] [--max-queue-wait-ms N]\n"
      "          [--max-waiting-per-submitter N] [--plan-cache-entries N]\n"
      "          [--result-cache-mb N]\n"
      "Serve framed queries over TCP on one shared executor pool.\n"
      "  --port 0 (default) picks an ephemeral port\n"
      "  --max-queue-wait-ms     default admission deadline (0 = none)\n"
      "  --max-waiting-per-submitter  backlog bound per connection (0 = "
      "unbounded)\n"
      "  --plan-cache-entries    plan cache size (0 disables; default 128)\n"
      "  --result-cache-mb       result cache bytes (0 disables; default "
      "32)\n",
      argv0);
  return 2;
}

bool ParseInt(int argc, char** argv, int* i, long* out) {
  if (*i + 1 >= argc) return false;
  char* end = nullptr;
  *out = std::strtol(argv[++*i], &end, 10);
  return end != nullptr && *end == '\0' && *out >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  gyo::serve::ServerOptions options;
  gyo::exec::ExecutorPool::Options pool_options;
  for (int i = 1; i < argc; ++i) {
    long value = 0;
    if (std::strcmp(argv[i], "--port") == 0 &&
        ParseInt(argc, argv, &i, &value)) {
      options.port = static_cast<int>(value);
    } else if (std::strcmp(argv[i], "--bind") == 0 && i + 1 < argc) {
      options.bind_address = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 &&
               ParseInt(argc, argv, &i, &value) && value >= 1) {
      pool_options.threads = static_cast<int>(value);
    } else if (std::strcmp(argv[i], "--max-concurrent-queries") == 0 &&
               ParseInt(argc, argv, &i, &value) && value >= 1) {
      pool_options.max_concurrent_queries = static_cast<int>(value);
    } else if (std::strcmp(argv[i], "--max-queue-wait-ms") == 0 &&
               ParseInt(argc, argv, &i, &value)) {
      pool_options.max_queue_wait_seconds =
          static_cast<double>(value) / 1000.0;
    } else if (std::strcmp(argv[i], "--max-waiting-per-submitter") == 0 &&
               ParseInt(argc, argv, &i, &value)) {
      pool_options.max_waiting_per_submitter = static_cast<int>(value);
    } else if (std::strcmp(argv[i], "--plan-cache-entries") == 0 &&
               ParseInt(argc, argv, &i, &value)) {
      options.plan_cache_entries = static_cast<size_t>(value);
    } else if (std::strcmp(argv[i], "--result-cache-mb") == 0 &&
               ParseInt(argc, argv, &i, &value)) {
      options.result_cache_bytes = static_cast<int64_t>(value) << 20;
    } else {
      return Usage(argv[0]);
    }
  }

  // Size the process-wide pool before any query touches it; the server
  // multiplexes every connection onto this one pool.
  gyo::exec::ExecutorPool::ConfigureGlobal(pool_options);

  gyo::serve::Server server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::printf("listening on %s:%d\n", options.bind_address.c_str(),
              server.port());
  std::fflush(stdout);

  const gyo::serve::DrainReport report = server.Wait();
  std::printf(
      "drained: %llu connections open, %llu queries in flight; lifetime "
      "%llu accepted, %llu served, %llu shed (deadline %llu, backlog %llu), "
      "%llu protocol errors\n",
      static_cast<unsigned long long>(report.connections_at_drain),
      static_cast<unsigned long long>(report.queries_in_flight_at_drain),
      static_cast<unsigned long long>(report.connections_accepted),
      static_cast<unsigned long long>(report.queries_served),
      static_cast<unsigned long long>(report.queries_shed_deadline +
                                      report.queries_shed_backlog),
      static_cast<unsigned long long>(report.queries_shed_deadline),
      static_cast<unsigned long long>(report.queries_shed_backlog),
      static_cast<unsigned long long>(report.protocol_errors));
  return 0;
}
