// Tableau lab: build the standard tableau Tab(D, X) for a query, minimize
// it, and report which relations survive in the core (paper §3.4).
//
//   $ ./tableau_lab [schema] [summary]
//
// With no arguments, walks through the running queries of §3.2 and §5.1.

#include <cstdio>
#include <string>

#include "schema/catalog.h"
#include "schema/parse.h"
#include "schema/schema.h"
#include "tableau/containment.h"
#include "tableau/minimize.h"
#include "tableau/tableau.h"

namespace {

void Lab(const std::string& schema_spec, const std::string& summary_spec) {
  gyo::Catalog catalog;
  gyo::DatabaseSchema d = gyo::ParseSchema(catalog, schema_spec);
  gyo::AttrSet x = gyo::ParseAttrSet(catalog, summary_spec);
  std::printf("query (D, X): D = %s, X = %s\n", d.Format(catalog).c_str(),
              catalog.Format(x).c_str());

  gyo::Tableau tab = gyo::Tableau::Standard(d, x);
  std::printf("Tab(D, X), %d rows x %d cols:\n%s", tab.NumRows(),
              tab.NumCols(), tab.Format(catalog).c_str());

  gyo::Tableau core = gyo::Minimize(tab);
  std::printf("minimal tableau, %d rows:\n%s", core.NumRows(),
              core.Format(catalog).c_str());

  std::printf("surviving relations:");
  for (int row = 0; row < core.NumRows(); ++row) {
    int origin = core.RowOrigin(row);
    std::printf(" R%d=%s", origin + 1,
                catalog.Format(d.Relation(origin)).c_str());
  }
  std::printf("\n");
  std::printf("core equivalent to Tab(D, X): %s\n\n",
              gyo::AreEquivalent(tab, core) ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    Lab(argv[1], argv[2]);
    return 0;
  }
  if (argc == 2) {
    std::fprintf(stderr, "usage: %s [schema summary]\n", argv[0]);
    return 2;
  }
  // §3.2: redundant path pieces fold into the spanning relation.
  Lab("ab,bc,ac", "ac");
  // A tree schema: the standard tableau is already minimal on its summary.
  Lab("ab,bc,cd", "ad");
  // An Aring: every relation is needed to connect the summary.
  Lab("ab,bc,ca", "abc");
  return 0;
}
