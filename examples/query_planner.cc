// query_planner: the paper's §4/§6 story end to end.
//
// Given a join query (D, X) over a universal-relation database, the planner
//   1. computes the canonical connection CC(D, X) (Thm 4.1) — the relevant
//      sub-database, with irrelevant relations dropped and useless columns
//      projected out;
//   2. emits three programs — full join, CC-pruned join, and (for tree
//      schemas) a Yannakakis semijoin plan;
//   3. executes all of them on a random UR database and cross-checks the
//      answers.
//
//   $ ./query_planner                      # the paper's §6 example
//   $ ./query_planner "ab,bc,cd" ad        # your own query
//   $ ./query_planner "ab,bc,cd" ad --threads 4   # parallel exec runtime
//
// With --threads N the programs run through the process-wide ExecutorPool
// (sized N here; GYO_EXEC_THREADS sizes it when the flag is absent), and
// --max-concurrent-queries M caps how many queries the pool admits at once.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/executor_pool.h"
#include "exec/physical_plan.h"
#include "exec_flags.h"
#include "gyo/acyclic.h"
#include "query/query.h"
#include "rel/ops.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/catalog.h"
#include "schema/fixtures.h"
#include "schema/parse.h"
#include "tableau/canonical.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  // Split off the optional "--threads N" / "--max-concurrent-queries M"
  // flags; what remains are the positional schema/target arguments.
  gyo::exec::ExecContext ctx;
  gyo::exec::ExecutorPool::Options pool_options;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    gyo_examples::FlagParse parsed =
        gyo_examples::ParseExecFlag(argc, argv, &i, &ctx, &pool_options);
    if (parsed == gyo_examples::FlagParse::kError) return 2;
    if (parsed == gyo_examples::FlagParse::kParsed) continue;
    positional.push_back(argv[i]);
  }
  gyo_examples::ConfigureExecFromFlags(&ctx, pool_options);

  gyo::Catalog catalog;
  gyo::DatabaseSchema d;
  gyo::AttrSet x;
  if (positional.size() >= 2) {
    d = gyo::ParseSchema(catalog, positional[0]);
    x = gyo::ParseAttrSet(catalog, positional[1]);
  } else {
    std::printf("== the paper's Section 6 example ==\n");
    d = gyo::fixtures::Sec6D(catalog);
    x = gyo::fixtures::Sec6X(catalog);
  }
  std::printf("query Q = (D, X), D = %s, X = %s\n\n", d.Format(catalog).c_str(),
              catalog.Format(x).c_str());

  // Step 1: relevance analysis via the canonical connection.
  gyo::CanonicalResult cc = gyo::RelevantSubdatabase(d, x);
  std::printf("CC(D, X) = %s   [%s]\n", cc.schema.Format(catalog).c_str(),
              cc.used_fast_path ? "GYO fast path (Thm 3.3)"
                                : "tableau minimization");
  for (int i = 0; i < cc.schema.NumRelations(); ++i) {
    int src = cc.sources[static_cast<size_t>(i)];
    if (cc.schema[i] == d[src]) {
      std::printf("  keep R%d = %s\n", src, catalog.Format(d[src]).c_str());
    } else {
      std::printf("  keep project[%s](R%d = %s)  (useless columns dropped)\n",
                  catalog.Format(cc.schema[i]).c_str(), src,
                  catalog.Format(d[src]).c_str());
    }
  }
  for (int i = 0; i < d.NumRelations(); ++i) {
    bool used = false;
    for (int src : cc.sources) used = used || (src == i);
    if (!used) {
      std::printf("  drop R%d = %s  (irrelevant)\n", i,
                  catalog.Format(d[i]).c_str());
    }
  }

  // Step 2: programs.
  gyo::Program full = gyo::FullJoinProgram(d, x);
  gyo::Program pruned = gyo::CCPrunedProgram(d, x);
  std::printf("\nfull-join program (%d joins):\n%s", full.NumJoins(),
              full.Format(catalog).c_str());
  std::printf("CC-pruned program (%d joins):\n%s", pruned.NumJoins(),
              pruned.Format(catalog).c_str());
  auto yann = gyo::YannakakisProgram(d, x);
  if (yann.has_value()) {
    std::printf("Yannakakis program (%d semijoins, %d joins):\n%s",
                yann->NumSemijoins(), yann->NumJoins(),
                yann->Format(catalog).c_str());
  } else {
    std::printf("Yannakakis program: n/a (cyclic schema)\n");
  }

  // Step 3: execute on a random UR database (through the exec runtime, on
  // ctx.threads workers) and cross-check.
  gyo::Rng rng(2026);
  gyo::Relation universal = gyo::RandomUniversal(d.Universe(), 64, 6, rng);
  std::vector<gyo::Relation> states = gyo::ProjectDatabase(universal, d);
  gyo::Relation reference = gyo::EvaluateJoinQuery(d, x, states);
  // Collect per-query stats so PrintPoolStatus can report the scheduling
  // counters (steals, affinity hits/misses) of the last query below.
  gyo::exec::QueryStats query_stats;
  if (ctx.threads != 1) ctx.query_stats = &query_stats;
  gyo::Relation via_full = gyo::exec::Run(full, states, ctx);
  gyo::Relation via_pruned = gyo::exec::Run(pruned, states, ctx);
  std::printf("\nexecution on a random UR database (|I| = %lld, %d thread%s):\n",
              static_cast<long long>(universal.NumRows()), ctx.threads,
              ctx.threads == 1 ? "" : "s");
  std::printf("  reference answer: %lld tuples\n",
              static_cast<long long>(reference.NumRows()));
  std::printf("  full join:        %lld tuples  %s\n",
              static_cast<long long>(via_full.NumRows()),
              via_full.EqualsAsSet(reference) ? "[match]" : "[MISMATCH]");
  std::printf("  CC-pruned:        %lld tuples  %s\n",
              static_cast<long long>(via_pruned.NumRows()),
              via_pruned.EqualsAsSet(reference) ? "[match]" : "[MISMATCH]");
  if (yann.has_value()) {
    gyo::Relation via_yann = gyo::exec::Run(*yann, states, ctx);
    std::printf("  Yannakakis:       %lld tuples  %s\n",
                static_cast<long long>(via_yann.NumRows()),
                via_yann.EqualsAsSet(reference) ? "[match]" : "[MISMATCH]");
  }
  if (ctx.threads != 1) gyo_examples::PrintPoolStatus(ctx);
  return 0;
}
