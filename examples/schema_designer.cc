// schema_designer: the paper's §5 story — auditing a decomposition.
//
// Given a database schema D, report:
//   * tree vs cyclic (Cor 3.1), with a qual tree when acyclic;
//   * γ-acyclicity (Thm 5.3) — when γ-acyclic, EVERY connected sub-database
//     has a lossless join (Cor 5.3) and no audit of individual subsets is
//     needed;
//   * otherwise, the connected sub-databases whose joins are lossy
//     (⋈D ⊭ ⋈D', Thm 5.1), i.e. the decompositions a designer must avoid.
//
//   $ ./schema_designer                 # the paper's (abc, ab, bc) example
//   $ ./schema_designer "ab,bc,cd"

#include <cstdio>
#include <vector>

#include "gyo/acyclic.h"
#include "gyo/gamma.h"
#include "gyo/qual_graph.h"
#include "query/lossless.h"
#include "schema/catalog.h"
#include "schema/parse.h"

int main(int argc, char** argv) {
  gyo::Catalog catalog;
  gyo::DatabaseSchema d =
      gyo::ParseSchema(catalog, argc > 1 ? argv[1] : "abc,ab,bc");
  std::printf("auditing D = %s\n", d.Format(catalog).c_str());

  bool tree = gyo::IsTreeSchema(d);
  std::printf("  %s schema", tree ? "tree" : "cyclic");
  if (tree) {
    auto qt = gyo::BuildJoinTree(d);
    std::printf(" (qual tree: %s)", qt->Format(d, catalog).c_str());
  }
  std::printf("\n");

  bool gamma = gyo::IsGammaAcyclic(d);
  std::printf("  gamma-acyclic: %s\n", gamma ? "yes" : "no");
  if (gamma) {
    std::printf("  => every connected sub-database has a lossless join "
                "(Cor 5.3); nothing to audit.\n");
    return 0;
  }
  if (auto cycle = gyo::FindWeakGammaCycle(d)) {
    std::printf("  gamma-cycle witness through relations:");
    for (size_t i = 0; i < cycle->relations.size(); ++i) {
      std::printf(" R%d", cycle->relations[i]);
    }
    std::printf("\n");
  }

  const int n = d.NumRelations();
  if (n > 16) {
    std::printf("  (schema too large to enumerate all sub-databases)\n");
    return 0;
  }
  std::printf("  lossy connected sub-databases (avoid these "
              "decompositions):\n");
  int lossy = 0;
  for (uint32_t mask = 1; mask < (uint32_t{1} << n); ++mask) {
    std::vector<int> indices;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1) indices.push_back(i);
    }
    if (static_cast<int>(indices.size()) == n) continue;  // D itself
    gyo::DatabaseSchema sub = d.Select(indices);
    if (!sub.IsConnected()) continue;
    if (!gyo::JoinDependencyImplies(d, sub)) {
      std::printf("    %s\n", sub.Format(catalog).c_str());
      ++lossy;
    }
  }
  if (lossy == 0) {
    std::printf("    (none — all connected sub-databases are lossless)\n");
  }
  return 0;
}
